//! A minimal wall-clock benchmark timer, replacing `criterion` for the
//! `sdr-bench` micro-benches.
//!
//! Scope is deliberately tiny: warm up, calibrate an iteration batch so
//! one sample costs ≥ ~1 ms, take N samples, report min / median / p99
//! per-iteration time. No statistics beyond order statistics, no plots,
//! no baseline storage — the experiment harness (`sdr-bench`'s
//! `experiments` binary) owns the paper's figures; these timers exist to
//! catch order-of-magnitude regressions on the hot paths.
//!
//! Environment knobs: `SDR_BENCH_SAMPLES` overrides the per-bench sample
//! count; `SDR_BENCH_QUICK=1` caps samples at 10 for smoke runs.
//!
//! ## JSON perf records
//!
//! Passing `--json` on the bench binary's command line (i.e.
//! `cargo bench --bench rtree_ops -- --json`), or setting
//! `SDR_BENCH_JSON=1` in the environment, makes [`Bench::finish`] write
//! the run's min/median/p99 numbers to `BENCH_<suite>.json` in the
//! current directory, where `<suite>` is the prefix of the bench names
//! before the first `/` (`rtree/insert_10k` → `BENCH_rtree.json`).
//! `--json-baseline` (or `SDR_BENCH_JSON=baseline`) writes the same
//! numbers under the file's `"baseline"` key instead of `"current"`,
//! which is how a pre-change run is pinned for later comparison: writes
//! merge with the existing file, so the baseline section survives
//! subsequent `--json` runs. A non-`1` value of `SDR_BENCH_JSON` (other
//! than `baseline`) is taken as the directory to write into.
//!
//! Benches may also attach named scalar *metrics* to the run
//! ([`Bench::record_metric`]) — message counts per operation, hop
//! statistics, correction rates — which land under a top-level
//! `"metrics"` key in the same file, merged like the bench sections.

use crate::json::Json;
pub use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One benchmark's summary, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Benchmark name.
    pub name: String,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 99th-percentile sample (the slowest sample for < 100 samples).
    pub p99_ns: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Samples taken.
    pub samples: usize,
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// Where a run's JSON record lands: the section key inside the
/// `BENCH_<suite>.json` file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JsonSection {
    /// The `"current"` section — the layout under test.
    Current,
    /// The `"baseline"` section — a pinned pre-change run.
    Baseline,
}

/// The bench runner: collects [`Summary`] rows and prints them.
#[derive(Debug)]
pub struct Bench {
    sample_size: usize,
    warmup: Duration,
    min_sample_time: Duration,
    results: Vec<Summary>,
    metrics: Vec<(String, f64)>,
    json: Option<(JsonSection, PathBuf)>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench {
            sample_size: 30,
            warmup: Duration::from_millis(150),
            min_sample_time: Duration::from_millis(1),
            results: Vec::new(),
            metrics: Vec::new(),
            json: None,
        }
    }
}

impl Bench {
    /// A runner configured from the environment and the process's
    /// command line (see module docs).
    pub fn from_env() -> Self {
        let mut b = Bench::default();
        if let Some(n) = std::env::var("SDR_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            b.sample_size = n.max(1);
        }
        if std::env::var_os("SDR_BENCH_QUICK").is_some() {
            b.sample_size = b.sample_size.min(10);
            b.warmup = Duration::from_millis(20);
        }
        let mut dir = PathBuf::from(".");
        let mut section = None;
        if let Ok(v) = std::env::var("SDR_BENCH_JSON") {
            match v.trim() {
                "" => {}
                "1" => section = Some(JsonSection::Current),
                "baseline" => section = Some(JsonSection::Baseline),
                d => {
                    section = Some(JsonSection::Current);
                    dir = PathBuf::from(d);
                }
            }
        }
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--json" => section = Some(JsonSection::Current),
                "--json-baseline" => section = Some(JsonSection::Baseline),
                _ => {}
            }
        }
        b.json = section.map(|s| (s, dir));
        b
    }

    /// Overrides the sample count for subsequent benches (kept for
    /// parity with criterion's `sample_size`; the env still wins).
    pub fn set_sample_size(&mut self, n: usize) {
        if std::env::var_os("SDR_BENCH_SAMPLES").is_none()
            && std::env::var_os("SDR_BENCH_QUICK").is_none()
        {
            self.sample_size = n.max(1);
        }
    }

    /// Measures one benchmark and prints its summary line.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warmup: self.warmup,
            min_sample_time: self.min_sample_time,
            summary: None,
        };
        f(&mut bencher);
        let summary = match bencher.summary {
            Some(mut s) => {
                s.name = name.to_string();
                s
            }
            None => {
                eprintln!("warning: bench `{name}` never called Bencher::iter");
                return;
            }
        };
        println!(
            "{:<44} min {}  med {}  p99 {}   ({} iters × {} samples)",
            summary.name,
            fmt_ns(summary.min_ns),
            fmt_ns(summary.median_ns),
            fmt_ns(summary.p99_ns),
            summary.iters_per_sample,
            summary.samples,
        );
        self.results.push(summary);
    }

    /// All summaries collected so far.
    pub fn results(&self) -> &[Summary] {
        &self.results
    }

    /// Attaches a named scalar metric to the run (e.g. a messages-per-
    /// operation count measured alongside the timed benches). Metrics
    /// share the bench naming convention — `suite/metric_name` — and are
    /// written to the same `BENCH_<suite>.json` under `"metrics"`.
    /// Non-finite values are dropped with a warning rather than
    /// poisoning the JSON record.
    pub fn record_metric(&mut self, name: &str, value: f64) {
        if !value.is_finite() {
            eprintln!("warning: metric `{name}` is not finite ({value}); skipped");
            return;
        }
        println!("{:<44} metric {value:.3}", name);
        self.metrics.push((name.to_string(), value));
    }

    /// Prints a closing line and, in `--json` mode, writes the perf
    /// record. (Kept as an explicit call so `main` reads like the
    /// criterion harness it replaced.)
    pub fn finish(&self) {
        println!("-- {} benches done", self.results.len());
        let Some((section, dir)) = &self.json else {
            return;
        };
        if self.results.is_empty() {
            return;
        }
        match self.write_json(*section, dir) {
            Ok(path) => println!("-- wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: failed to write bench JSON: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Merges this run's summaries into `BENCH_<suite>.json` under the
    /// given section, preserving the other section and any benches from
    /// sibling suites sharing the file (e.g. `cluster_insert` and
    /// `cluster_query` both land in `BENCH_cluster.json`).
    fn write_json(&self, section: JsonSection, dir: &Path) -> Result<PathBuf, String> {
        let suite = self.results[0]
            .name
            .split('/')
            .next()
            .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or("bench")
            .to_string();
        let path = dir.join(format!("BENCH_{suite}.json"));
        let mut root = match std::fs::read_to_string(&path) {
            Ok(text) => Json::parse(&text).unwrap_or(Json::Obj(vec![])),
            Err(_) => Json::Obj(vec![]),
        };
        if root.as_obj().is_none() {
            root = Json::Obj(vec![]);
        }
        root.set("suite", Json::Str(suite));
        let key = match section {
            JsonSection::Current => "current",
            JsonSection::Baseline => "baseline",
        };
        let mut benches = match root.get(key) {
            Some(Json::Obj(pairs)) => Json::Obj(pairs.clone()),
            _ => Json::Obj(vec![]),
        };
        for s in &self.results {
            benches.set(
                &s.name,
                Json::Obj(vec![
                    ("min_ns".to_string(), Json::Num(s.min_ns)),
                    ("median_ns".to_string(), Json::Num(s.median_ns)),
                    ("p99_ns".to_string(), Json::Num(s.p99_ns)),
                    (
                        "iters_per_sample".to_string(),
                        Json::Num(s.iters_per_sample as f64),
                    ),
                    ("samples".to_string(), Json::Num(s.samples as f64)),
                ]),
            );
        }
        root.set(key, benches);
        if !self.metrics.is_empty() {
            let mut metrics = match root.get("metrics") {
                Some(Json::Obj(pairs)) => Json::Obj(pairs.clone()),
                _ => Json::Obj(vec![]),
            };
            for (name, value) in &self.metrics {
                metrics.set(name, Json::Num(*value));
            }
            root.set("metrics", metrics);
        }
        std::fs::write(&path, root.to_pretty()).map_err(|e| e.to_string())?;
        Ok(path)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// to measure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    min_sample_time: Duration,
    summary: Option<Summary>,
}

impl Bencher {
    /// Measures `f`: warmup, batch-size calibration, then
    /// `sample_size` timed samples.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup: run until the warmup budget elapses (at least once).
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // Calibrate: enough iterations that one sample meets the floor.
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters = ((self.min_sample_time.as_nanos() as f64 / per_iter.max(0.1)).ceil() as u64)
            .clamp(1, 10_000_000);
        // Sample.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("time is not NaN"));
        let n = samples_ns.len();
        self.summary = Some(Summary {
            name: String::new(),
            min_ns: samples_ns[0],
            median_ns: samples_ns[n / 2],
            p99_ns: samples_ns[((n as f64 * 0.99) as usize).min(n - 1)],
            iters_per_sample: iters,
            samples: n,
        });
    }
}

/// Expands to a `main` that runs the named bench functions — the
/// replacement for `criterion_group!` + `criterion_main!`:
///
/// ```ignore
/// fn bench_codec(c: &mut sdr_det::bench::Bench) { /* c.bench_function(...) */ }
/// sdr_det::bench_main!(bench_codec);
/// ```
#[macro_export]
macro_rules! bench_main {
    ($($target:path),+ $(,)?) => {
        fn main() {
            let mut bench = $crate::bench::Bench::from_env();
            $($target(&mut bench);)+
            bench.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let mut b = Bench {
            sample_size: 5,
            warmup: Duration::from_millis(1),
            min_sample_time: Duration::from_micros(50),
            ..Bench::default()
        };
        b.bench_function("noop_sum", |bencher| {
            bencher.iter(|| (0..100u64).sum::<u64>())
        });
        assert_eq!(b.results().len(), 1);
        let s = &b.results()[0];
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p99_ns);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn bench_without_iter_is_reported_not_fatal() {
        let mut b = Bench::default();
        b.bench_function("forgot_iter", |_| {});
        assert!(b.results().is_empty());
    }

    #[test]
    fn json_record_merges_baseline_and_current() {
        let dir = std::env::temp_dir().join(format!("sdr_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut b = Bench {
            sample_size: 3,
            warmup: Duration::from_millis(1),
            min_sample_time: Duration::from_micros(20),
            ..Bench::default()
        };
        b.bench_function("demo/alpha", |bencher| {
            bencher.iter(|| (0..50u64).sum::<u64>())
        });
        b.record_metric("demo/msgs_per_op", 3.25);
        b.record_metric("demo/bad", f64::NAN);
        // Baseline first, then current: both sections must coexist.
        let path = b
            .write_json(JsonSection::Baseline, &dir)
            .expect("write baseline");
        b.write_json(JsonSection::Current, &dir)
            .expect("write current");
        let text = std::fs::read_to_string(&path).expect("read back");
        let root = Json::parse(&text).expect("valid json");
        assert_eq!(root.get("suite").and_then(Json::as_str), Some("demo"));
        for section in ["baseline", "current"] {
            let med = root
                .get(section)
                .and_then(|s| s.get("demo/alpha"))
                .and_then(|e| e.get("median_ns"))
                .and_then(Json::as_f64)
                .expect("median recorded");
            assert!(med > 0.0);
        }
        // Metrics land under their own key; the non-finite one was
        // dropped at record time.
        let metrics = root.get("metrics").expect("metrics section");
        assert_eq!(
            metrics.get("demo/msgs_per_op").and_then(Json::as_f64),
            Some(3.25)
        );
        assert!(metrics.get("demo/bad").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
