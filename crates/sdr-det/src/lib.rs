//! # sdr-det — the workspace's determinism kit
//!
//! This workspace builds **hermetically**: no dependency outside the
//! `sdr-*` crates, so `cargo build && cargo test` succeed with no
//! network access and every randomized workload replays bit-identically
//! from its seed. `sdr-det` is the crate that makes that possible; it
//! replaces `rand`, `proptest`, and `criterion` with three small
//! first-party modules:
//!
//! * [`rng`] — [`SplitMix64`] seeding + [`Xoshiro256pp`] generation
//!   behind the minimal [`DetRng`] trait (`next_u64`, `gen_range`,
//!   `gen_f64`, `gen_bool`, `shuffle`), plus
//!   [`fork`](Xoshiro256pp::fork) for deriving independent substreams
//!   from one master seed.
//! * [`mod@prop`] — a property-testing harness: composable generators
//!   ([`prop::u64s`], [`prop::f64_in`], [`prop::rects_in`],
//!   [`prop::vecs_of`], ...), the [`prop!`](crate::prop!) declaration
//!   macro, and greedy choice-stream shrinking on failure.
//! * [`mod@bench`] — a wall-clock bench timer (warmup, calibrated batches,
//!   min/median/p99 report) behind the [`bench_main!`](crate::bench_main!)
//!   macro, with an optional `--json` mode that records runs to
//!   `BENCH_<suite>.json` perf files.
//! * [`mod@json`] — the minimal JSON value type those perf records (and
//!   their CI validator) are built on.
//!
//! ## Example
//!
//! ```
//! use sdr_det::{DetRng, Rng};
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//!
//! // Independent substreams from one seed:
//! let mut extents = rng.fork(1);
//! let mut centers = rng.fork(2);
//! assert_ne!(extents.next_u64(), centers.next_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use rng::{bounded, DetRng, Rng, SampleRange, SplitMix64, Xoshiro256pp};
