//! A small property-testing harness with shrinking.
//!
//! Drop-in replacement for the workspace's previous `proptest!` call
//! sites, built on the *choice stream* idea (as in Hypothesis): a
//! generator is a function from a [`Source`] of raw `u64` draws to a
//! value. While exploring, the source draws from a seeded
//! [`Xoshiro256pp`] and records every choice; when a case fails, the
//! harness shrinks the *recorded choice list* (truncate, zero, halve,
//! decrement) and replays the generator over the mutated list. Because
//! shrinking happens below the generators, every combinator — `map`,
//! `vecs_of`, `one_of` — shrinks for free, and primitives are designed
//! so that smaller choices mean simpler values (ranges shrink toward
//! their start, `one_of` toward its first alternative, vectors toward
//! empty).
//!
//! Failures replay exactly: every suite runs from a fixed default seed,
//! overridable with `SDR_PROP_SEED`; the case count defaults to 128
//! (≥ 100 everywhere) and is overridable with `SDR_PROP_CASES`.
//!
//! # Writing a property test
//!
//! ```
//! use sdr_det::prop::{check, f64_in, Gen};
//!
//! fn arb_pair() -> Gen<(f64, f64)> {
//!     f64_in(0.0, 10.0).zip(f64_in(0.0, 10.0))
//! }
//!
//! // In a test module this is usually written with the `prop!` macro:
//! //     sdr_det::prop! {
//! //         fn addition_commutes(p in arb_pair()) { ... }
//! //     }
//! check("addition_commutes", |src, _repr| {
//!     let (a, b) = arb_pair().generate(src);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::{DetRng, Xoshiro256pp};
use sdr_geom::{Point, Rect};
use std::cell::Cell;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

/// The fixed default seed every property suite starts from, so a failure
/// reported on one machine replays exactly on another.
pub const DEFAULT_SEED: u64 = 0x5D_27EE_2007;

// ------------------------------------------------------------- source --

/// A stream of raw `u64` choices feeding the generators.
///
/// In exploration mode the choices come from an RNG; in replay mode they
/// come from a recorded (possibly mutated) list, padded with zeros when
/// the generators ask for more than was recorded.
pub struct Source<'a> {
    replay: Vec<u64>,
    pos: usize,
    rng: Option<&'a mut Xoshiro256pp>,
    record: Vec<u64>,
}

impl<'a> Source<'a> {
    /// An exploring source drawing fresh choices from `rng`.
    pub fn random(rng: &'a mut Xoshiro256pp) -> Source<'a> {
        Source {
            replay: Vec::new(),
            pos: 0,
            rng: Some(rng),
            record: Vec::new(),
        }
    }

    /// A replaying source serving `choices`, then zeros.
    pub fn replay(choices: Vec<u64>) -> Source<'static> {
        Source {
            replay: choices,
            pos: 0,
            rng: None,
            record: Vec::new(),
        }
    }

    /// Draws the next raw choice.
    pub fn draw(&mut self) -> u64 {
        let v = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else if let Some(rng) = self.rng.as_mut() {
            rng.next_u64()
        } else {
            0
        };
        self.pos += 1;
        self.record.push(v);
        v
    }

    /// The choices drawn so far.
    pub fn recorded(&self) -> &[u64] {
        &self.record
    }
}

impl DetRng for Source<'_> {
    fn next_u64(&mut self) -> u64 {
        self.draw()
    }
}

// --------------------------------------------------------- generators --

/// A composable value generator: a function from a choice [`Source`] to
/// a value. Cheap to clone (the closure is reference-counted).
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: self.f.clone() }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw generator function.
    pub fn from_fn(f: impl Fn(&mut Source) -> T + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// Produces one value.
    pub fn generate(&self, src: &mut Source) -> T {
        (self.f)(src)
    }

    /// Maps the generated value. Shrinking passes through: the
    /// underlying choices shrink, and the map re-applies.
    pub fn map<U: 'static>(self, g: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::from_fn(move |src| g(self.generate(src)))
    }

    /// Pairs two generators.
    pub fn zip<U: 'static>(self, other: Gen<U>) -> Gen<(T, U)> {
        Gen::from_fn(move |src| (self.generate(src), other.generate(src)))
    }
}

/// Constant generator (draws nothing).
pub fn just<T: Clone + 'static>(v: T) -> Gen<T> {
    Gen::from_fn(move |_| v.clone())
}

/// Any `u64` (shrinks toward 0).
pub fn u64s() -> Gen<u64> {
    Gen::from_fn(|src| src.draw())
}

/// Any `u32` (shrinks toward 0).
pub fn u32s() -> Gen<u32> {
    Gen::from_fn(|src| src.draw() as u32)
}

/// Booleans (shrink toward `false`).
pub fn bools() -> Gen<bool> {
    Gen::from_fn(|src| src.draw() & 1 == 1)
}

/// Uniform `usize` in `[range.start, range.end)`, shrinking toward the
/// start.
pub fn usize_in(range: Range<usize>) -> Gen<usize> {
    assert!(range.start < range.end, "empty range");
    let (lo, span) = (range.start, (range.end - range.start) as u64);
    Gen::from_fn(move |src| lo + (src.draw() % span) as usize)
}

/// Uniform `u32` in `[range.start, range.end)`, shrinking toward the
/// start.
pub fn u32_in(range: Range<u32>) -> Gen<u32> {
    assert!(range.start < range.end, "empty range");
    let (lo, span) = (range.start, (range.end - range.start) as u64);
    Gen::from_fn(move |src| lo + (src.draw() % span) as u32)
}

/// Uniform `f64` in `[lo, hi)`, shrinking toward `lo`.
pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
    assert!(lo < hi, "empty range");
    Gen::from_fn(move |src| {
        let unit = (src.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + unit * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    })
}

/// Rectangles with their lower-left corner in `x × y` and per-axis
/// extents in `[0, wmax) × [0, hmax)`. Shrinks toward the degenerate
/// rectangle at `(x.start, y.start)`.
pub fn rects_in(x: Range<f64>, y: Range<f64>, wmax: f64, hmax: f64) -> Gen<Rect> {
    let (gx, gy) = (f64_in(x.start, x.end), f64_in(y.start, y.end));
    let (gw, gh) = (f64_in(0.0, wmax), f64_in(0.0, hmax));
    Gen::from_fn(move |src| {
        let (x, y) = (gx.generate(src), gy.generate(src));
        let (w, h) = (gw.generate(src), gh.generate(src));
        Rect::new(x, y, x + w, y + h)
    })
}

/// Points in `x × y`, shrinking toward `(x.start, y.start)`.
pub fn points_in(x: Range<f64>, y: Range<f64>) -> Gen<Point> {
    let (gx, gy) = (f64_in(x.start, x.end), f64_in(y.start, y.end));
    Gen::from_fn(move |src| Point::new(gx.generate(src), gy.generate(src)))
}

/// Vectors of `len` elements drawn from `g`, with `len` uniform in the
/// given range. Shrinks toward shorter vectors of simpler elements.
pub fn vecs_of<T: 'static>(g: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
    assert!(len.start < len.end, "empty length range");
    let glen = usize_in(len);
    Gen::from_fn(move |src| {
        let n = glen.generate(src);
        (0..n).map(|_| g.generate(src)).collect()
    })
}

/// `None` or `Some` (shrinks toward `None`).
pub fn option_of<T: 'static>(g: Gen<T>) -> Gen<Option<T>> {
    Gen::from_fn(move |src| {
        if src.draw() & 1 == 1 {
            Some(g.generate(src))
        } else {
            None
        }
    })
}

/// Uniform choice among alternatives (shrinks toward the first).
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of needs at least one alternative");
    Gen::from_fn(move |src| {
        let i = (src.draw() % gens.len() as u64) as usize;
        gens[i].generate(src)
    })
}

/// Weighted choice among alternatives (shrinks toward the first) — the
/// analogue of `prop_oneof![w1 => g1, ...]`.
pub fn freq<T: 'static>(pairs: Vec<(u32, Gen<T>)>) -> Gen<T> {
    let total: u64 = pairs.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "freq needs positive total weight");
    Gen::from_fn(move |src| {
        let mut roll = src.draw() % total;
        for (w, g) in &pairs {
            if roll < *w as u64 {
                return g.generate(src);
            }
            roll -= *w as u64;
        }
        unreachable!("roll < total by construction")
    })
}

// ------------------------------------------------------------- runner --

/// Runner configuration. `Default` reads `SDR_PROP_CASES` /
/// `SDR_PROP_SEED` from the environment, falling back to 128 cases from
/// [`DEFAULT_SEED`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run.
    pub cases: usize,
    /// Master seed; case `i` runs on `fork(i)` of it.
    pub seed: u64,
    /// Attempt budget for the shrinking loop.
    pub max_shrink_iters: usize,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: env_u64("SDR_PROP_CASES").map(|n| n as usize).unwrap_or(128),
            seed: env_u64("SDR_PROP_SEED").unwrap_or(DEFAULT_SEED),
            max_shrink_iters: 4096,
        }
    }
}

impl Config {
    /// Overrides the case count unless `SDR_PROP_CASES` is set (the
    /// environment always wins, so a CI job can crank every suite up or
    /// down uniformly).
    pub fn with_cases(mut self, cases: usize) -> Self {
        if std::env::var_os("SDR_PROP_CASES").is_none() {
            self.cases = cases;
        }
        self
    }
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

/// Routes panic *messages* from property execution to /dev/null (the
/// panics themselves still propagate): shrinking deliberately re-panics
/// the property dozens of times, and the default hook would spray each
/// one onto stderr. Thread-local gating keeps other tests' panics loud.
fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs the property once over `src`; `Err((input_repr, panic_msg))` on
/// failure.
fn run_once<F>(f: &F, src: &mut Source) -> Result<(), (String, String)>
where
    F: Fn(&mut Source, &mut String),
{
    let mut repr = String::new();
    QUIET.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(src, &mut repr)));
    QUIET.with(|q| q.set(false));
    outcome.map_err(|p| (repr, panic_message(p)))
}

/// Candidate simplifications of a failing choice list, in decreasing
/// order of ambition: drop the tail, then zero / halve / decrement
/// individual choices. Every candidate is strictly smaller under the
/// (length, element-wise) measure, so greedy adoption terminates.
fn shrink_candidates(best: &[u64]) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let n = best.len();
    if n > 0 {
        out.push(best[..n / 2].to_vec());
        out.push(best[..n - 1].to_vec());
    }
    for i in 0..n {
        let v = best[i];
        if v == 0 {
            continue;
        }
        let mut zeroed = best.to_vec();
        zeroed[i] = 0;
        out.push(zeroed);
        if v > 1 {
            let mut halved = best.to_vec();
            halved[i] = v / 2;
            out.push(halved);
        }
        let mut dec = best.to_vec();
        dec[i] = v - 1;
        out.push(dec);
    }
    out
}

/// Greedily shrinks a failing choice list. Returns the simplest failing
/// input's repr, its panic message, and the number of successful
/// shrink steps.
fn shrink<F>(
    f: &F,
    mut best: Vec<u64>,
    mut best_repr: String,
    mut best_msg: String,
    budget: usize,
) -> (String, String, usize)
where
    F: Fn(&mut Source, &mut String),
{
    let mut iters = 0usize;
    let mut steps = 0usize;
    'outer: loop {
        for cand in shrink_candidates(&best) {
            if iters >= budget {
                break 'outer;
            }
            iters += 1;
            let mut src = Source::replay(cand.clone());
            if let Err((repr, msg)) = run_once(f, &mut src) {
                best = cand;
                best_repr = repr;
                best_msg = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (best_repr, best_msg, steps)
}

/// Runs a property under the default [`Config`]. Prefer the [`prop!`]
/// macro, which generates the argument plumbing.
///
/// The property receives a choice [`Source`] to generate its inputs from
/// and a `String` to record their debug representation in (shown on
/// failure); it signals failure by panicking (any `assert!` works).
///
/// [`prop!`]: crate::prop!
pub fn check<F>(name: &str, f: F)
where
    F: Fn(&mut Source, &mut String),
{
    check_with(Config::default(), name, f)
}

/// [`check`] with an explicit configuration.
pub fn check_with<F>(cfg: Config, name: &str, f: F)
where
    F: Fn(&mut Source, &mut String),
{
    install_quiet_hook();
    let master = Xoshiro256pp::seed_from_u64(cfg.seed);
    for case in 0..cfg.cases {
        let mut rng = master.fork(case as u64);
        let mut src = Source::random(&mut rng);
        if let Err((repr, msg)) = run_once(&f, &mut src) {
            let record = src.record.clone();
            let (repr, msg, steps) = shrink(&f, record, repr, msg, cfg.max_shrink_iters);
            panic!(
                "property `{name}` failed at case {case}/{cases} \
                 (seed {seed:#x}, {steps} shrink steps)\nminimal failing input:\n{repr}\
                 assertion: {msg}\nreplay with SDR_PROP_SEED={seed}",
                cases = cfg.cases,
                seed = cfg.seed,
            );
        }
    }
}

/// Declares property tests.
///
/// ```ignore
/// sdr_det::prop! {
///     fn union_commutes(a in arb_rect(), b in arb_rect()) {
///         assert_eq!(a.union(&b), b.union(&a));
///     }
///     // Heavy properties can lower the case count (≥ the env override):
///     fn big_simulation(cases = 100; ops in arb_ops()) { /* ... */ }
/// }
/// ```
///
/// Each declaration expands to a `#[test]` running [`check`] /
/// [`check_with`]; on failure the shrunk arguments and the replay seed
/// are part of the panic message.
#[macro_export]
macro_rules! prop {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident(cases = $cases:expr; $($arg:ident in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::prop::check_with(
                $crate::prop::Config::default().with_cases($cases),
                stringify!($name),
                |__src, __repr| {
                    $(let $arg = ($gen).generate(__src);)+
                    {
                        use ::std::fmt::Write as _;
                        $(let _ = ::std::writeln!(
                            __repr, concat!("  ", stringify!($arg), " = {:?}"), &$arg);)+
                    }
                    $body
                },
            );
        }
        $crate::prop! { $($rest)* }
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $crate::prop! {
            $(#[$meta])*
            fn $name(cases = $crate::prop::Config::default().cases; $($arg in $gen),+) $body
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let gen = vecs_of(f64_in(0.0, 1.0), 0..10);
        let run = |seed: u64| {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut src = Source::random(&mut rng);
            gen.generate(&mut src)
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn replay_reproduces_recorded_values() {
        let gen = vecs_of(u64s(), 1..20);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut src = Source::random(&mut rng);
        let v1 = gen.generate(&mut src);
        let mut replay = Source::replay(src.recorded().to_vec());
        let v2 = gen.generate(&mut replay);
        assert_eq!(v1, v2);
    }

    #[test]
    fn passing_property_passes() {
        check("tautology", |src, _| {
            let v = usize_in(0..100).generate(src);
            assert!(v < 100);
        });
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        let outcome = std::panic::catch_unwind(|| {
            check("find_42", |src, repr| {
                let v = usize_in(0..1000).generate(src);
                repr.push_str(&format!("  v = {v}\n"));
                // Fails for every v >= 42; minimal counterexample is 42.
                assert!(v < 42, "v too big");
            });
        });
        let msg = panic_message(outcome.expect_err("property must fail"));
        assert!(
            msg.contains("v = 42"),
            "expected shrink to the boundary, got:\n{msg}"
        );
        assert!(msg.contains("SDR_PROP_SEED"), "must tell how to replay");
    }

    #[test]
    fn vec_shrinking_reaches_short_vectors() {
        let outcome = std::panic::catch_unwind(|| {
            check("short_vec", |src, repr| {
                let v = vecs_of(usize_in(0..10), 0..50).generate(src);
                repr.push_str(&format!("  v = {v:?}\n"));
                assert!(v.len() < 3, "long");
            });
        });
        let msg = panic_message(outcome.expect_err("property must fail"));
        // Greedy truncation must get from ~dozens down to exactly 3
        // simplest elements.
        assert!(
            msg.contains("v = [0, 0, 0]"),
            "expected [0, 0, 0], got:\n{msg}"
        );
    }

    #[test]
    fn freq_honors_weights_roughly() {
        let gen = freq(vec![(9, just(true)), (1, just(false))]);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut src = Source::random(&mut rng);
        let hits = (0..5_000).filter(|_| gen.generate(&mut src)).count();
        assert!((4_200..4_800).contains(&hits), "got {hits}");
    }

    prop! {
        fn macro_generated_test_runs(a in f64_in(0.0, 1.0), b in f64_in(0.0, 1.0)) {
            assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
        }

        fn macro_with_cases(cases = 17; n in usize_in(0..5)) {
            assert!(n < 5);
        }
    }
}
