//! Deterministic pseudo-random number generation.
//!
//! The workspace bans external dependencies, so this module provides the
//! two small, well-studied generators everything else builds on:
//!
//! * [`SplitMix64`] — a one-word state mixer used to expand a `u64` seed
//!   into the larger Xoshiro state (the initialization recommended by
//!   the xoshiro authors), and to derive independent substream seeds.
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna), the workhorse
//!   generator: 256-bit state, 64-bit output, passes BigCrush, and is a
//!   few instructions per draw.
//!
//! Determinism is the point: the same seed always yields the same
//! stream, on every platform, forever — the GSTD-like workloads and the
//! `CHOOSEFROMIMAGE` randomized probes of the experiments must replay
//! bit-identically across runs (see `EXPERIMENTS.md`). The golden test
//! at the bottom of this file pins the output stream so an accidental
//! algorithm change cannot slip through.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, fast, full-period generator over 64-bit state.
///
/// Used for seed expansion and substream derivation rather than as the
/// primary generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++: the workspace's primary deterministic generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The conventional short name: everywhere else in the workspace this is
/// just "the RNG".
pub type Rng = Xoshiro256pp;

impl Xoshiro256pp {
    /// Seeds the 256-bit state by running SplitMix64 over `seed`, as the
    /// xoshiro reference implementation recommends (this guarantees a
    /// non-zero state for every seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives an independent substream identified by `stream_id`,
    /// without consuming any output from `self`.
    ///
    /// Forking is a pure function of the current state and the id: the
    /// same parent state and id always produce the same child, and
    /// distinct ids produce streams that are independent for every
    /// practical purpose (each id re-keys a SplitMix64 expansion of the
    /// mixed parent state). This is how one master seed drives many
    /// decoupled workload components — dataset extents, query centers,
    /// motion steps — without any stream ever aliasing another.
    pub fn fork(&self, stream_id: u64) -> Self {
        let mixed = self.s[0]
            ^ self.s[1].rotate_left(16)
            ^ self.s[2].rotate_left(32)
            ^ self.s[3].rotate_left(48);
        let mut sm = SplitMix64::new(mixed ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl DetRng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The minimal RNG interface the workspace programs against.
///
/// Only [`DetRng::next_u64`] is required; everything else derives from
/// it, so any generator with a 64-bit output can slot in.
pub trait DetRng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (the high half of a 64-bit draw — the
    /// high bits are the best-mixed bits of xoshiro-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from a range, e.g. `rng.gen_range(0..10u32)` or
    /// `rng.gen_range(-0.5..=0.5)`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..xs.len()).rev() {
            let j = bounded(self, (i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }
}

/// Uniform draw in `[0, n)` via the multiply-shift reduction (Lemire).
/// The residual bias is at most `n / 2⁶⁴` — unmeasurable for every `n`
/// this workspace uses.
pub fn bounded<R: DetRng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "bounded draw from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

/// A range types can be uniformly sampled from. See [`DetRng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    fn sample<R: DetRng>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: DetRng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Floating-point rounding can land exactly on the excluded upper
        // bound; fold that measure-zero case back onto the start.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: DetRng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: DetRng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden outputs pin the exact streams: a change to either
    /// algorithm (or to seeding/forking) breaks replayability of every
    /// recorded experiment, so it must never happen silently.
    #[test]
    fn golden_splitmix64() {
        let mut sm = SplitMix64::new(42);
        let got: Vec<u64> = (0..4).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xbdd7_3226_2feb_6e95,
                0x28ef_e333_b266_f103,
                0x4752_6757_130f_9f52,
                0x581c_e1ff_0e4a_e394,
            ]
        );
    }

    #[test]
    fn golden_xoshiro256pp() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xd076_4d4f_4476_689f,
                0x519e_4174_576f_3791,
                0xfbe0_7cfb_0c24_ed8c,
                0xb37d_9f60_0cd8_35b8,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fork_is_deterministic_and_distinct() {
        let parent = Xoshiro256pp::seed_from_u64(3);
        let mut f1 = parent.fork(1);
        let mut f1b = parent.fork(1);
        let mut f2 = parent.fork(2);
        let s1: Vec<u64> = (0..10).map(|_| f1.next_u64()).collect();
        let s1b: Vec<u64> = (0..10).map(|_| f1b.next_u64()).collect();
        let s2: Vec<u64> = (0..10).map(|_| f2.next_u64()).collect();
        assert_eq!(s1, s1b, "same id must fork the same stream");
        assert_ne!(s1, s2, "distinct ids must fork distinct streams");
    }

    #[test]
    fn fork_does_not_disturb_parent() {
        let mut a = Xoshiro256pp::seed_from_u64(5);
        let mut b = Xoshiro256pp::seed_from_u64(5);
        let _ = b.fork(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval_with_sane_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..5_000 {
            let i = rng.gen_range(3u32..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-0.25f64..0.75);
            assert!((-0.25..0.75).contains(&f));
            let g = rng.gen_range(-0.1f64..=0.1);
            assert!((-0.1..=0.1).contains(&g));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<u32>>(),
            "50! makes identity absurd"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
