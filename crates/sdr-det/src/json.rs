//! A minimal JSON value type with a parser and serializer.
//!
//! Exists so the bench timer can *write* `BENCH_*.json` perf records and
//! the CI validator can *read* them back, without reintroducing `serde`
//! into the hermetic workspace. Scope is the JSON the workspace itself
//! produces: objects, arrays, strings (with `\uXXXX` escapes), finite
//! numbers, booleans and null. Non-finite numbers serialize as `null`
//! (matching `JSON.stringify`).

use std::fmt::Write as _;

/// A JSON value.
///
/// Objects preserve insertion order (they are association lists, not
/// hash maps — the handful of keys in a bench record never warrants a
/// table).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Inserts or replaces `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(pairs) = self else {
            panic!("Json::set on a non-object");
        };
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => pairs.push((key.to_string(), value)),
        }
    }

    /// Parses a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, &mut out);
        out.push('\n');
        out
    }
}

fn write_value(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.is_finite() {
                // Integral values print without a fraction for readability.
                if *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                let _ = write!(out, "{pad}  ");
                write_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}]");
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                let _ = write!(out, "{pad}  ");
                write_string(k, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}}}");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
                );
                *pos += 1;
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are out of scope for the files we
                        // produce; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape `\\{}`", esc as char)),
                }
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_bench_record() {
        let mut root = Json::Obj(vec![]);
        root.set("suite", Json::Str("rtree".into()));
        root.set(
            "current",
            Json::Obj(vec![(
                "rtree/window_query".into(),
                Json::Obj(vec![
                    ("min_ns".into(), Json::Num(1234.5)),
                    ("median_ns".into(), Json::Num(2000.0)),
                ]),
            )]),
        );
        let text = root.to_pretty();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back, root);
        assert_eq!(
            back.get("current")
                .and_then(|c| c.get("rtree/window_query"))
                .and_then(|b| b.get("min_ns"))
                .and_then(Json::as_f64),
            Some(1234.5)
        );
    }

    #[test]
    fn parses_literals_arrays_and_escapes() {
        let v = Json::parse(r#"{"a": [1, -2.5e1, true, false, null], "s": "x\n\"A"}"#)
            .expect("valid json");
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-25.0),
                Json::Bool(true),
                Json::Bool(false),
                Json::Null,
            ]))
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x\n\"A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "{\"a\": 1} extra", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn set_replaces_in_place() {
        let mut o = Json::Obj(vec![("k".into(), Json::Num(1.0))]);
        o.set("k", Json::Num(2.0));
        assert_eq!(o.get("k").and_then(Json::as_f64), Some(2.0));
        assert_eq!(o.as_obj().unwrap().len(), 1);
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(30.0).to_pretty(), "30\n");
        assert_eq!(Json::Num(0.5).to_pretty(), "0.5\n");
    }
}
