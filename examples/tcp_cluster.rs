//! The SD-Rtree over real sockets: spins up a TCP deployment on
//! localhost, grows it through splits, and queries it from two
//! independent clients.
//!
//! ```bash
//! cargo run --release --example tcp_cluster
//! ```

use sd_rtree::net::{NetClient, NetCluster};
use sd_rtree::{Object, Oid, Point, Rect, SdrConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Every server is a thread with its own listener; servers spawn
    // themselves as splits happen.
    let cluster = NetCluster::launch(SdrConfig::with_capacity(200))?;
    println!("deployment up (server 0 listening)");

    let mut writer = NetClient::connect(&cluster)?;
    println!("inserting 2,000 objects over TCP...");
    for i in 0..2_000u64 {
        let x = (i % 50) as f64 / 50.0;
        let y = (i / 50) as f64 / 50.0;
        writer.insert(Object::new(Oid(i), Rect::new(x, y, x + 0.012, y + 0.012)))?;
    }
    writer.quiesce()?;
    println!("cluster grew to {} servers", cluster.num_servers());

    // A second client with a cold image: its first query goes to its
    // contact server and gets repaired; the IAM teaches it the tree.
    let mut reader = NetClient::connect(&cluster)?;
    let hits = reader.window_query(Rect::new(0.40, 0.40, 0.60, 0.60))?;
    println!("window query over the center: {} objects", hits.len());
    println!(
        "reader image now knows {} servers (started with 0)",
        reader.image().known_servers()
    );

    let probe = Point::new(0.5005, 0.5005);
    let at = reader.point_query(probe)?;
    println!("point query at (0.5005, 0.5005): {} object(s)", at.len());

    let victim = at.first().copied();
    if let Some(obj) = victim {
        let removed = reader.delete(obj)?;
        println!("deleted {}: {}", obj.oid, removed);
    }

    cluster.shutdown();
    println!("deployment stopped ✓");
    Ok(())
}
