//! Airspace conflict detection: the distributed spatial join in action.
//!
//! Aircraft protected zones (mbbs inflated by a separation minimum) are
//! indexed in the SD-Rtree; a conflict is any pair of zones that
//! intersect. The distributed self-join finds every conflict without
//! any node ever seeing the whole fleet: local pairs are found locally,
//! and cross-server pairs are discovered by probing exactly the overlap
//! regions that the overlapping-coverage tables (§2.3) already track.
//!
//! ```bash
//! cargo run --release --example airspace_conflicts
//! ```

use sd_rtree::{Client, ClientId, Cluster, Object, Oid, Point, Rect, SdrConfig, Variant};
use sdr_det::{DetRng, Rng};

const AIRCRAFT: usize = 5_000;
const SEPARATION: f64 = 0.004; // protected-zone half-extent

fn main() {
    let mut rng = Rng::seed_from_u64(2026);
    // Traffic concentrates along three airways.
    let airways = [
        (0.2, 0.8, 0.9, 0.1),
        (0.1, 0.2, 0.9, 0.9),
        (0.5, 0.05, 0.5, 0.95),
    ];
    let zones: Vec<Rect> = (0..AIRCRAFT)
        .map(|_| {
            let (x0, y0, x1, y1) = airways[rng.gen_range(0..airways.len())];
            let t: f64 = rng.gen_f64();
            let (jx, jy): (f64, f64) = (rng.gen_range(-0.02..0.02), rng.gen_range(-0.02..0.02));
            let c = Point::new(
                (x0 + t * (x1 - x0) + jx).clamp(0.0, 1.0),
                (y0 + t * (y1 - y0) + jy).clamp(0.0, 1.0),
            );
            Rect::centered(c, 2.0 * SEPARATION, 2.0 * SEPARATION)
        })
        .collect();

    let mut cluster = Cluster::new(SdrConfig::with_capacity(500));
    let mut atc = Client::new(ClientId(0), Variant::ImClient, 1);
    for (i, z) in zones.iter().enumerate() {
        atc.insert(&mut cluster, Object::new(Oid(i as u64), *z));
    }
    println!(
        "{AIRCRAFT} protected zones over {} servers (height {})",
        cluster.num_servers(),
        cluster.height()
    );

    let join = atc.spatial_join(&mut cluster);
    println!(
        "conflict sweep: {} conflicting pairs found in {} messages \
         ({:.1} per server)",
        join.pairs.len(),
        join.messages,
        join.messages as f64 / cluster.num_servers() as f64
    );

    // Who is involved in the most conflicts?
    let mut counts = std::collections::HashMap::<u64, usize>::new();
    for (a, b) in &join.pairs {
        *counts.entry(a.0).or_default() += 1;
        *counts.entry(b.0).or_default() += 1;
    }
    let mut worst: Vec<(u64, usize)> = counts.into_iter().collect();
    worst.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("most conflicted aircraft:");
    for (oid, c) in worst.iter().take(5) {
        println!("  aircraft {oid}: {c} conflicts");
    }

    // Drill into one hotspot with a distance query.
    if let Some((oid, _)) = worst.first() {
        let z = zones[*oid as usize];
        let c = z.center();
        let near = atc.within(&mut cluster, c, 4.0 * SEPARATION);
        println!(
            "zones within {:.3} of aircraft {}: {}",
            4.0 * SEPARATION,
            oid,
            near.len()
        );
    }

    // Sanity: the distributed join agrees with a brute-force sweep.
    let brute = zones
        .iter()
        .enumerate()
        .flat_map(|(i, a)| {
            zones[i + 1..]
                .iter()
                .enumerate()
                .filter(move |(_, b)| a.intersects(b))
                .map(move |(j, _)| (i, i + 1 + j))
        })
        .count();
    assert_eq!(join.pairs.len(), brute);
    println!("verified against a brute-force sweep ✓");
}
