//! Points-of-interest search: a skewed, read-heavy workload comparing
//! the paper's three addressing variants.
//!
//! POIs cluster around cities (the paper's skewed GSTD distribution);
//! users run point and window lookups. The example shows the message
//! economics that motivate the whole design: the BASIC variant funnels
//! everything through the root server, while client images cut the cost
//! to ~1–3 messages per operation and spread the load evenly.
//!
//! ```bash
//! cargo run --release --example poi_search
//! ```

use sd_rtree::workload::{DatasetSpec, Distribution, PointSpec, WindowSpec};
use sd_rtree::{Client, ClientId, Cluster, Object, Oid, SdrConfig, Variant};

const POIS: usize = 60_000;
const LOOKUPS: usize = 500;

fn main() {
    let pois = DatasetSpec::new(POIS, Distribution::default_skewed()).generate(2026);
    let points = PointSpec::uniform().generate(LOOKUPS, 3);
    let windows = WindowSpec::with_max_extent(0.05).generate(LOOKUPS, 4);

    println!("indexing {POIS} POIs (skewed around 5 cities), then {LOOKUPS} lookups\n");
    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>14} {:>12}",
        "variant", "servers", "ins msg/op", "point msg/q", "window msg/q", "root share"
    );

    for variant in [Variant::Basic, Variant::ImServer, Variant::ImClient] {
        let mut cluster = Cluster::new(SdrConfig::with_capacity(2_000));
        let mut client = Client::new(ClientId(0), variant, 11);

        let t_ins = cluster.stats.snapshot();
        for (i, r) in pois.iter().enumerate() {
            client.insert(&mut cluster, Object::new(Oid(i as u64), *r));
        }
        let ins = cluster.stats.since(&t_ins);

        let t_q = cluster.stats.snapshot();
        let mut results = 0usize;
        for p in &points {
            results += client.point_query(&mut cluster, *p).results.len();
        }
        let point_msgs = cluster.stats.since(&t_q);

        let t_w = cluster.stats.snapshot();
        for w in &windows {
            results += client.window_query(&mut cluster, *w).results.len();
        }
        let window_msgs = cluster.stats.since(&t_w);

        // How concentrated is the load on the root server?
        let root = cluster.root_node().server;
        let root_share = cluster.stats.server(root) as f64 / cluster.stats.total().max(1) as f64;

        println!(
            "{:<10} {:>8} {:>12.2} {:>14.2} {:>14.2} {:>11.1}%",
            format!("{variant:?}"),
            cluster.num_servers(),
            ins.total as f64 / POIS as f64,
            point_msgs.total as f64 / LOOKUPS as f64,
            window_msgs.total as f64 / LOOKUPS as f64,
            root_share * 100.0,
        );
        // Silence the unused accumulation (the work is real; the count
        // is identical across variants by construction).
        let _ = results;
    }

    println!(
        "\nTwo effects to read off the table: (1) inserts — images cut the cost to \
         ~1-2\nmessages while BASIC pays a full root-to-leaf path every time; \
         (2) the root\nshare — BASIC funnels a fifth of ALL traffic through one \
         machine, the variants\nspread it. On heavily-overlapping skewed data the \
         per-query message count of\nthe image variants can exceed BASIC's (leaf-level \
         coverage forwarding pays for\noverlap), but the root is no longer the \
         bottleneck — which is what scalability\nmeans for an SDDS (§3, §5)."
    );
}
