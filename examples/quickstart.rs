//! Quickstart: build a distributed SD-Rtree, watch it scale through
//! splits, and run every kind of query.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use sd_rtree::core::MsgCategory;
use sd_rtree::{Client, ClientId, Cluster, Object, Oid, Point, Rect, SdrConfig, Variant};

fn main() {
    // A cluster starts as a single empty server. Data nodes hold up to
    // 500 objects here (the paper uses 3,000); beyond that a server
    // splits and hands half its data to a freshly allocated server.
    let mut cluster = Cluster::new(SdrConfig::with_capacity(500));

    // The main client variant of the paper: the client keeps an *image*
    // of the distributed tree, lazily corrected by image adjustment
    // messages whenever it addresses the wrong server.
    let mut client = Client::new(ClientId(0), Variant::ImClient, 42);

    // Index 20,000 small rectangles laid out on a grid.
    println!("inserting 20,000 objects...");
    let mut oid = 0u64;
    for i in 0..200 {
        for j in 0..100 {
            let r = Rect::new(i as f64, j as f64, i as f64 + 0.6, j as f64 + 0.6);
            client.insert(&mut cluster, Object::new(Oid(oid), r));
            oid += 1;
        }
    }

    println!(
        "cluster: {} servers, tree height {}, average load {:.0}%",
        cluster.num_servers(),
        cluster.height(),
        cluster.avg_load() * 100.0
    );
    println!(
        "messages: {} total ({} insert routing, {} split, {} balance, {} coverage)",
        cluster.stats.total(),
        cluster.stats.category(MsgCategory::Insert),
        cluster.stats.category(MsgCategory::Split),
        cluster.stats.category(MsgCategory::Adjust) + cluster.stats.category(MsgCategory::Rotation),
        cluster.stats.category(MsgCategory::Oc),
    );

    // Point query: which objects cover this point?
    let p = Point::new(42.3, 17.3);
    let out = client.point_query(&mut cluster, p);
    println!(
        "\npoint query {:?}: {} object(s) in {} message(s) (direct hit: {})",
        (p.x, p.y),
        out.results.len(),
        out.messages,
        out.direct
    );

    // Window query: everything intersecting a region.
    let w = Rect::new(10.0, 10.0, 14.5, 13.5);
    let out = client.window_query(&mut cluster, w);
    println!(
        "window query {}x{}: {} object(s) in {} message(s)",
        w.width(),
        w.height(),
        out.results.len(),
        out.messages
    );

    // k nearest neighbours (the paper's future-work extension).
    let knn = client.knn(&mut cluster, Point::new(100.0, 50.0), 5);
    println!("5-NN around (100, 50):");
    for (oid, dist) in &knn.neighbors {
        println!("  {oid} at distance {dist:.3}");
    }

    // Delete an object and verify it is gone.
    let victim = Object::new(Oid(0), Rect::new(0.0, 0.0, 0.6, 0.6));
    let (removed, _) = client.delete(&mut cluster, victim);
    let check = client.point_query(&mut cluster, Point::new(0.3, 0.3));
    println!(
        "\ndeleted object o0: {} (point query now finds {} object(s) there)",
        removed,
        check.results.len()
    );

    // The structure stays internally consistent throughout.
    cluster.check_invariants();
    println!("all structural invariants hold ✓");
}
