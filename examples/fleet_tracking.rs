//! Fleet tracking: a moving-objects scenario on top of the SD-Rtree.
//!
//! A dispatch center indexes the positions of a delivery fleet. Vehicles
//! move (delete + re-insert of their bounding boxes, driven by the
//! GSTD-style `MotionSpec` workload), dispatchers run region monitoring
//! (window queries) and nearest-vehicle lookups (kNN). This is the
//! "endlessly larger datasets" use case the paper's conclusion motivates
//! with Google Earth-scale services.
//!
//! ```bash
//! cargo run --release --example fleet_tracking
//! ```

use sd_rtree::workload::MotionSpec;
use sd_rtree::{Client, ClientId, Cluster, Object, Oid, Point, Rect, SdrConfig, Variant};

const FLEET: usize = 8_000;
const TICKS: usize = 5;

fn main() {
    let mut cluster = Cluster::new(SdrConfig::with_capacity(1_000));
    let mut dispatch = Client::new(ClientId(0), Variant::ImClient, 1);

    // A fleet doing a bounded random walk; 10% of vehicles move per tick.
    let mut motion = MotionSpec::new(FLEET, 0.02).with_mobility(0.1).start(7);
    for (i, r) in motion.rects().into_iter().enumerate() {
        dispatch.insert(&mut cluster, Object::new(Oid(i as u64), r));
    }
    println!(
        "fleet of {FLEET} vehicles over {} servers (height {})",
        cluster.num_servers(),
        cluster.height()
    );

    let center = Rect::new(0.45, 0.45, 0.55, 0.55);
    for tick in 1..=TICKS {
        // Movement = delete old box + insert new box.
        let moves = motion.tick();
        let moved = moves.len();
        for (v, old, new) in moves {
            let (removed, _) = dispatch.delete(&mut cluster, Object::new(Oid(v as u64), old));
            assert!(removed, "vehicle {v} lost by the index");
            dispatch.insert(&mut cluster, Object::new(Oid(v as u64), new));
        }

        let monitor = dispatch.window_query(&mut cluster, center);
        let incident = motion.position(tick * 37 % FLEET);
        let nearest = dispatch.knn(&mut cluster, Point::new(incident.x, incident.y), 3);

        println!(
            "tick {tick}: moved {moved:4} vehicles | {:3} in city center ({} msgs) | \
             3 nearest to incident at ({:.2},{:.2}): {:?}",
            monitor.results.len(),
            monitor.messages,
            incident.x,
            incident.y,
            nearest
                .neighbors
                .iter()
                .map(|(oid, d)| format!("{oid}@{d:.3}"))
                .collect::<Vec<_>>(),
        );

        // Cross-check the region monitor against ground truth.
        let truth = motion
            .rects()
            .iter()
            .filter(|r| center.intersects(r))
            .count();
        assert_eq!(
            monitor.results.len(),
            truth,
            "monitor out of sync at tick {tick}"
        );
    }

    cluster.check_invariants();
    println!(
        "\nafter {TICKS} ticks: {} objects on {} servers, invariants hold ✓",
        cluster.total_objects(),
        cluster.num_servers()
    );
}
